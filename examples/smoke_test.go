// Package examples_test smoke-tests the example programs: each must build
// and run to completion with a zero exit status inside a deadline. The
// examples are the repository's executable documentation — `make examples`
// and CI run this so a refactor that breaks their API usage (or an example
// that stops terminating) fails by name instead of rotting silently.
package examples_test

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// examplePrograms lists every example binary; add new examples here so the
// smoke keeps covering them.
var examplePrograms = []string{
	"quickstart",
	"multihop",
	"disasterrelay",
	"reposync",
}

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("building and running the example binaries is not short")
	}
	for _, name := range examplePrograms {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command("go", "build", "-o", bin, "./"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./%s: %v\n%s", name, err, out)
			}

			// The examples are deterministic simulations that finish in
			// seconds; a generous deadline distinguishes "slow machine" from
			// "stopped terminating".
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, bin).CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("%s did not finish within the deadline\noutput so far:\n%s", name, out)
			}
			if err != nil {
				t.Fatalf("%s exited with %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output; the walkthrough narration is part of its contract", name)
			}
		})
	}
}
