// Command multihop demonstrates the paper's Fig. 6 topology in miniature. A downloader two
// radio hops from the producer reaches it through a chain of one pure
// forwarder (an NDN-only node that has never heard of DAPES) and one
// DAPES-aware intermediate that forwards or suppresses Interests based on
// the bitmaps it overhears (Section V).
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"dapes/internal/core"
	"dapes/internal/geo"
	"dapes/internal/metadata"
	"dapes/internal/multihop"
	"dapes/internal/ndn"
	"dapes/internal/phy"
	"dapes/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	kernel := sim.NewKernel(9)
	medium := phy.NewMedium(kernel, phy.Config{Range: 55, LossRate: 0.05})

	collection, err := metadata.BuildCollection(
		ndn.ParseName("/sensor-archive"),
		[]metadata.File{{Name: "readings", Content: bytes.Repeat([]byte{3}, 8_000)}},
		1000, metadata.FormatPacketDigest, nil)
	if err != nil {
		return err
	}
	coll := collection.Manifest.Collection

	cfg := core.Config{Multihop: true, ForwardProb: 0.4, RandomStart: true}

	// Chain: producer(0) - pure forwarder(50) - intermediate(100) - downloader(150).
	producer := core.NewPeer(kernel, medium, geo.Stationary{At: geo.Point{X: 0}}, nil, nil, cfg)
	if err := producer.Publish(collection); err != nil {
		return err
	}
	pure := multihop.NewPureForwarder(kernel, medium, geo.Stationary{At: geo.Point{X: 50}},
		multihop.Config{ForwardProb: 0.4})
	// The intermediate downloads the same collection (the paper's "same
	// file collection" case), giving it first-hand bitmap knowledge.
	intermediate := core.NewPeer(kernel, medium, geo.Stationary{At: geo.Point{X: 100}}, nil, nil, cfg)
	intermediate.Subscribe(coll)
	downloader := core.NewPeer(kernel, medium, geo.Stationary{At: geo.Point{X: 150}}, nil, nil, cfg)
	downloader.Subscribe(coll)

	producer.Start()
	pure.Start()
	intermediate.Start()
	downloader.Start()

	if ok := kernel.RunUntil(time.Hour, func() bool {
		done, _ := downloader.Done(coll)
		return done
	}); !ok {
		h, t := downloader.Progress(coll)
		return fmt.Errorf("three-hop download incomplete: %d/%d", h, t)
	}
	_, at := downloader.Done(coll)
	fmt.Printf("downloader (3 hops out) completed at t=%v\n", at.Round(time.Second))

	ps := pure.Stats()
	fmt.Printf("pure forwarder: %d interests forwarded, %d suppressed, %d data relayed, %d cache replies\n",
		ps.InterestsForwarded, ps.InterestsSuppressed, ps.DataForwarded, ps.CsReplies)
	is := intermediate.Stats()
	fmt.Printf("DAPES intermediate: %d forwarded, %d suppressed, %d served from its own copy\n",
		is.InterestsForwarded, is.InterestsSuppressed, is.DataSent)
	if is.InterestsForwarded > 0 {
		fmt.Printf("intermediate forwarding accuracy: %.0f%% (paper: 83%%)\n",
			100*intermediate.ForwardingAccuracy())
	}
	return nil
}
